// Fault-injection campaign (DESIGN.md §9, EXPERIMENTS.md robustness
// section): mixed churn under seeded allocation failures and forced guard
// stalls, on top of the usual schedule perturbation. Every quiescent
// barrier runs the full structural validation; after teardown the
// AllocStats counters must balance — an OOM'd insert may fail the caller,
// but it must never corrupt the tree, leak a node, or strand a lock.
//
// This binary compiles the trees with LOT_FAULT_INJECT *and*
// LOT_SCHEDULE_PERTURB (tests/stress/CMakeLists.txt), so injected
// bad_allocs and stalls land inside artificially widened race windows.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <new>
#include <thread>
#include <type_traits>
#include <vector>

#include "check/perturb.hpp"
#include "inject/inject.hpp"
#include "lo/map.hpp"
#include "lo/partial.hpp"
#include "lo/validate.hpp"
#include "reclaim/alloc_stats.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/pool.hpp"
#include "sync/barrier.hpp"
#include "util/random.hpp"

#ifndef LOT_STRESS_DIVISOR
#define LOT_STRESS_DIVISOR 1
#endif

namespace {

using lot::reclaim::AllocStats;
namespace inject = lot::inject;

constexpr std::uint64_t scaled(std::uint64_t n) {
  const std::uint64_t s = n / LOT_STRESS_DIVISOR;
  return s > 0 ? s : 1;
}

struct FaultParams {
  unsigned threads = 8;
  int phases = 3;
  std::uint64_t ops_per_phase = scaled(8'000);  // per thread
  std::int64_t key_range = 192;
  std::uint64_t seed = 1;
  bool check_heights = false;
  bool partial = false;
  std::uint32_t alloc_fail_permille = 60;
  std::uint32_t pool_fail_permille = 20;  // slab exhaustion inside the pool
  std::uint32_t stall_permille = 12;
  std::uint32_t stall_max_us = 120;
};

void arm_injection(const FaultParams& p) {
  inject::reset_fire_counts();
  inject::set_seed(p.seed);
  inject::set_site_rate(inject::Site::kLoInsertAlloc, p.alloc_fail_permille);
  inject::set_site_rate(inject::Site::kPartialInsertAlloc,
                        p.alloc_fail_permille);
  inject::set_site_rate(inject::Site::kPoolAlloc, p.pool_fail_permille);
  inject::set_site_rate(inject::Site::kGuardStallReader, p.stall_permille);
  inject::set_site_rate(inject::Site::kGuardStallWriter, p.stall_permille);
  inject::set_stall_max_us(p.stall_max_us);
  inject::enable_injection(true);
}

void disarm_injection() {
  inject::enable_injection(false);
  lot::check::enable_perturbation(false);
}

/// The campaign proper. The domain and map live in a scope of their own so
/// teardown (map chain + retired backlog) happens before the AllocStats
/// balance check — "no leaks" is asserted against everything the run ever
/// allocated, not just the happy paths.
template <typename MapT>
void run_fault_campaign(const FaultParams& p) {
  const auto live_before = AllocStats::live();
  std::atomic<std::uint64_t> survived_oom{0};
  {
    lot::reclaim::EbrDomain domain;
    domain.set_retire_threshold(32);  // keep reclamation active during churn
    MapT map(domain);

    // Uninjected half-dense prefill: erase/contains hit live keys at once.
    for (std::int64_t k = 0; k < p.key_range; k += 2) {
      ASSERT_TRUE(map.insert(k, k));
    }

    arm_injection(p);
    lot::check::reset_perturb_hits();
    lot::check::set_perturbation(30, 40);
    lot::check::enable_perturbation(true);

    lot::sync::ThreadBarrier barrier(p.threads);
    std::vector<std::thread> workers;
    workers.reserve(p.threads);
    for (unsigned t = 0; t < p.threads; ++t) {
      workers.emplace_back([&, t] {
        lot::util::Xoshiro256 rng(p.seed * 0x9E3779B97F4A7C15ULL + t + 1);
        std::uint64_t oom_here = 0;
        for (int phase = 0; phase < p.phases; ++phase) {
          barrier.arrive_and_wait();  // (1) phase start
          for (std::uint64_t i = 0; i < p.ops_per_phase; ++i) {
            const std::int64_t key = static_cast<std::int64_t>(
                rng.next_below(static_cast<std::uint64_t>(p.key_range)));
            const auto dice = rng.next_below(100);
            if (dice < 40) {
              map.contains(key);
            } else if (dice < 70) {
              // The one fallible operation: an injected bad_alloc must be
              // a clean no-op (strong guarantee) — the tree stays valid,
              // no lock stays held, and the worker simply moves on.
              try {
                map.insert(key, key);
              } catch (const std::bad_alloc&) {
                ++oom_here;
              }
            } else {
              map.erase(key);
            }
          }
          barrier.arrive_and_wait();  // (2) quiescent: validate
          if (t == 0) {
            if constexpr (MapT::kBalanced) {
              // Converge any rotations the contention throttle deferred
              // before asserting the strict AVL bound (DESIGN.md §13).
              if (p.check_heights) map.repair_balance();
            }
            const auto rep =
                lot::lo::validate(map, p.check_heights, p.partial);
            EXPECT_TRUE(rep.ok)
                << "structural validation failed after phase " << phase
                << " with " << inject::fires(inject::Site::kLoInsertAlloc) +
                                   inject::fires(
                                       inject::Site::kPartialInsertAlloc)
                << " injected allocation failures:\n"
                << rep.to_string();
          }
          barrier.arrive_and_wait();  // (3) release past validation
        }
        survived_oom.fetch_add(oom_here);
      });
    }
    for (auto& w : workers) w.join();
    disarm_injection();

    // The campaign must actually have injected something, or this test
    // silently degenerates into the plain perturbed stress.
    const auto alloc_site = p.partial ? inject::Site::kPartialInsertAlloc
                                      : inject::Site::kLoInsertAlloc;
    EXPECT_GT(inject::fires(alloc_site), 0u);
    // Pool-site faults (slab exhaustion inside Alloc::create) surface as
    // the same caught bad_alloc; in LOT_POOL_ALLOC=OFF builds the site
    // never fires and this reduces to the pre-pool equation.
    EXPECT_EQ(inject::fires(alloc_site) +
                  inject::fires(inject::Site::kPoolAlloc),
              survived_oom.load());
    if (std::is_same_v<lot::reclaim::DefaultNodeAlloc,
                       lot::reclaim::PoolNodeAlloc>) {
      EXPECT_GT(inject::fires(inject::Site::kPoolAlloc), 0u);
    }
    EXPECT_GT(inject::fires(inject::Site::kGuardStallReader) +
                  inject::fires(inject::Site::kGuardStallWriter),
              0u);
    std::printf(
        "[ faults   ] %llu alloc failures survived, %llu reader stalls, "
        "%llu writer stalls\n",
        static_cast<unsigned long long>(survived_oom.load()),
        static_cast<unsigned long long>(
            inject::fires(inject::Site::kGuardStallReader)),
        static_cast<unsigned long long>(
            inject::fires(inject::Site::kGuardStallWriter)));

    if constexpr (MapT::kBalanced) {
      if (p.check_heights) map.repair_balance();
    }
    const auto rep = lot::lo::validate(map, p.check_heights, p.partial);
    EXPECT_TRUE(rep.ok) << "final structural validation failed:\n"
                        << rep.to_string();

    domain.flush();
    const auto stats = domain.stats();
    EXPECT_EQ(stats.emergency_leaks, 0u);
    EXPECT_EQ(domain.pending_retired(), 0u);
  }
  // Map chain and retired backlog are gone: every node the campaign ever
  // allocated — including the ones whose insert lost to an injected fault
  // or a duplicate — must be freed.
  EXPECT_EQ(AllocStats::live(), live_before) << "node leak under injection";
}

TEST(LoFaultStress, BstSurvivesInjectedFaults) {
  FaultParams p;
  p.check_heights = false;
  run_fault_campaign<lot::lo::LoMap<std::int64_t, std::int64_t,
                                    std::less<std::int64_t>, false>>(p);
}

TEST(LoFaultStress, AvlSurvivesInjectedFaults) {
  FaultParams p;
  p.check_heights = true;
  run_fault_campaign<lot::lo::LoMap<std::int64_t, std::int64_t,
                                    std::less<std::int64_t>, true>>(p);
}

TEST(LoFaultStress, PartialAvlSurvivesInjectedFaults) {
  FaultParams p;
  p.check_heights = true;
  p.partial = true;
  run_fault_campaign<lot::lo::PartialAvlMap<std::int64_t, std::int64_t>>(p);
}

// An allocator that always fails: every insert must throw, and the map —
// including its internal lock state — must come through untouched, so the
// moment the "allocator" recovers the map works again.
TEST(LoFaultStress, TotalAllocFailureIsCleanNoOp) {
  lot::reclaim::EbrDomain domain;
  lot::lo::LoMap<std::int64_t, std::int64_t> map(domain);
  for (std::int64_t k = 0; k < 32; ++k) ASSERT_TRUE(map.insert(k, k));

  inject::reset_fire_counts();
  inject::set_seed(7);
  inject::set_site_rate(inject::Site::kLoInsertAlloc, 1000);  // always fire
  inject::enable_injection(true);
  for (std::int64_t k = 100; k < 140; ++k) {
    EXPECT_THROW(map.insert(k, k), std::bad_alloc);
  }
  inject::enable_injection(false);

  // Untouched: old keys present, failed keys absent, validation clean,
  // and inserts succeed again now the faults stopped.
  for (std::int64_t k = 0; k < 32; ++k) EXPECT_TRUE(map.contains(k));
  for (std::int64_t k = 100; k < 140; ++k) EXPECT_FALSE(map.contains(k));
  const auto rep = lot::lo::validate(map, true);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_TRUE(map.insert(500, 500));
  EXPECT_TRUE(map.contains(500));
}

// Same seed, same single-thread op sequence → identical injection
// decisions. Each run uses a fresh thread with the per-thread stream
// counter reset, mirroring how a failing campaign is replayed.
TEST(LoFaultStress, InjectionIsDeterministicUnderFixedSeed) {
  auto run_once = [] {
    inject::inject_state().thread_counter.store(0);
    inject::reset_fire_counts();
    inject::set_seed(42);
    inject::set_site_rate(inject::Site::kLoInsertAlloc, 250);
    inject::enable_injection(true);
    std::uint64_t failures = 0;
    std::thread worker([&] {
      lot::reclaim::EbrDomain domain;
      lot::lo::LoMap<std::int64_t, std::int64_t> map(domain);
      for (std::int64_t k = 0; k < 2'000; ++k) {
        try {
          map.insert(k, k);
        } catch (const std::bad_alloc&) {
          ++failures;
        }
      }
    });
    worker.join();
    inject::enable_injection(false);
    return failures;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);
}

}  // namespace
