// Chaos storm + recovery campaign for the overload governor (DESIGN.md
// §14, EXPERIMENTS.md A10). One run per LO variant:
//
//   1. Recorded churn from N workers while a StormScheduler drives seeded
//      allocation faults and guard-stall swarms through a ramp/hold/release
//      envelope, AND a dedicated straggler thread pins an epoch for the
//      whole storm — the worst weather the process models: memory failing,
//      readers preempted, reclamation wedged.
//   2. During the storm the governor must react (state reaches Degraded or
//      worse: the straggler trips the EBR stall watchdog and the frozen
//      epoch piles up retire backlog past the storm thresholds).
//   3. The storm releases, the straggler unpins, and the governor must
//      walk back to Healthy within its documented recovery_bound() of
//      explicit sample ticks while the drain boost collapses the backlog
//      under the high-water mark.
//   4. Quiescent: repair_balance converges, structural validation is
//      clean, the recorded history is linearizable (faults included — an
//      OOM'd insert records nothing and must have changed nothing), and
//      the obs counters reconcile exactly against the history.
//
// The negative control (GovernorPoliciesOffViolatesRecoveryBound) runs the
// same weather with the degradation policies disabled and the thresholds
// unreachable — the ungoverned build, as a runtime arm so both come from
// one binary. The tree still survives (linearizable: the governor is a
// performance/robustness layer, never a correctness dependency), but the
// backlog does NOT collapse within the recovery bound: the difference the
// governor makes, stated as a test.
//
// In a -DLOT_HEALTH=OFF build the governor does not exist; this file then
// registers only the survival half (OffBuildSurvivesStorm): same weather,
// same linearizability + reconciliation + leak assertions, manual cleanup
// where the governed build would have recovered on its own.
//
// Obs reconciliation under faults: an insert killed by an injected
// bad_alloc records no history event. The on-time policy allocates before
// its first descent, so a thrown insert touches no counters; the
// logical-removing policy allocates lazily mid-walk and pays one
// kInsertRestarts in its unwind to keep the descent audit balanced
// (lo/core.hpp). Hence here, unlike the fault-free identity,
//   d(kValidationFallbacks) == d(kInsertRestarts) + d(kEraseRestarts)
//                              - (escaped insert bad_allocs, lazy variants)
// while the read-side audit (contains_restarts == 0) holds unchanged.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <new>
#include <thread>
#include <vector>

#include "health/health.hpp"
#include "inject/storm.hpp"
#include "lo/map.hpp"
#include "lo/partial.hpp"
#include "reclaim/alloc_stats.hpp"
#include "reclaim/pool.hpp"
#include "stress_common.hpp"
#include "sync/backoff.hpp"

namespace {

namespace inject = lot::inject;
using lot::health::State;
using lot::reclaim::AllocStats;
using lot::stress::scaled;

struct StormParams {
  unsigned threads = 8;
  std::uint64_t max_ops_per_thread = scaled(40'000);  // cap; stop-flag driven
  std::int64_t key_range = 192;
  std::uint64_t seed = 1;
  bool check_heights = false;
  bool partial = false;
  // Lazy (logical-removing) inserts pay one kInsertRestarts per escaped
  // bad_alloc; on-time inserts throw before their first descent.
  bool lazy_insert_alloc = false;
  bool governed = true;  // false = negative control (policies off,
                         // thresholds unreachable)
  std::size_t high_water = 768;  // EBR backlog mark the recovery must beat
};

inject::StormSpec storm_spec(const StormParams& p) {
  inject::StormSpec s;
  s.seed = p.seed;
  s.ramp_ms = 50;
  s.hold_ms = 100;
  s.release_ms = 50;
  s.step_ms = 5;
  s.stall_max_us = 150;
#if defined(LOT_FAULT_INJECT)
  s.sites = {
      {p.partial ? inject::Site::kPartialInsertAlloc
                 : inject::Site::kLoInsertAlloc,
       120},
      {inject::Site::kPoolAlloc, 40},
      {inject::Site::kGuardStallReader, 15},
      {inject::Site::kGuardStallWriter, 15},
  };
#endif
  return s;
}

#if !defined(LOT_DISABLE_HEALTH)

using lot::health::governor;

/// Storm thresholds: reachable by one test-sized run (the defaults are
/// sized for production backlogs). backlog Critical (1536) sits above
/// high_water so recovery-by-flush is observable as Critical -> Healthy.
lot::health::Thresholds storm_thresholds() {
  lot::health::Thresholds t;
  t.backlog[0] = 256;
  t.backlog[1] = 512;
  t.backlog[2] = 1536;
  return t;
}

lot::health::Thresholds unreachable_thresholds() {
  lot::health::Thresholds t;
  for (int i = 0; i < 3; ++i) {
    t.backlog[i] = t.fallback[i] = t.heat[i] = UINT64_MAX;
  }
  t.lag_ticks = UINT32_MAX;
  return t;
}

void configure_governor(const StormParams& p) {
  governor().reset();
  governor().set_thresholds(p.governed ? storm_thresholds()
                                       : unreachable_thresholds());
  lot::health::set_policies_enabled(p.governed);
}

State sample_governor(lot::reclaim::EbrDomain& domain) {
  return governor().sample(domain);
}

std::uint32_t recovery_bound_ticks() { return governor().recovery_bound(); }

void teardown_governor() { governor().reset(); }

#else  // LOT_DISABLE_HEALTH — no governor; the campaign reduces to the
       // survival half with a fixed stand-in bound for the (ungoverned)
       // backlog-freeze observation.

void configure_governor(const StormParams&) {}
State sample_governor(lot::reclaim::EbrDomain&) { return State::kHealthy; }
std::uint32_t recovery_bound_ticks() { return 10; }
void teardown_governor() {}

#endif  // LOT_DISABLE_HEALTH

template <typename MapT>
void run_storm_campaign(const StormParams& p) {
  using K = typename MapT::key_type;
  const auto live_before = AllocStats::live();
  std::atomic<std::uint64_t> survived_oom{0};
  {
    configure_governor(p);

    lot::reclaim::EbrDomain domain;
    domain.set_retire_threshold(64);
    domain.set_backlog_high_water(p.high_water);
    domain.set_stall_strike_limit(8);
    MapT map(domain);

    const std::size_t cap_per_thread =
        p.max_ops_per_thread + static_cast<std::size_t>(p.key_range) + 8;
    lot::check::HistoryRecorder<K> rec(p.threads, cap_per_thread);
    const lot::obs::Snapshot obs_before =
        lot::obs::Registry::instance().snapshot();

    // Calm-weather recorded prefill (the storm isn't armed yet).
    for (std::int64_t k = 0; k < p.key_range; k += 2) {
      rec.record(0, lot::check::Op::kInsert, static_cast<K>(k), [&] {
        return map.insert(static_cast<K>(k), static_cast<K>(k));
      });
    }

    inject::reset_fire_counts();
    lot::sync::set_backoff_seed(p.seed);
    lot::check::reset_perturb_hits();
    lot::check::set_perturbation(20, 40);
    lot::check::enable_perturbation(true);

    // The straggler: pinned before the first worker op, released only
    // after the workers are quiescent — every node retired during the run
    // stays pending, deterministically, until the recovery phase.
    std::atomic<bool> straggler_parked{false};
    std::atomic<bool> straggler_release{false};
    std::thread straggler([&] {
      auto g = domain.guard();
      straggler_parked = true;
      while (!straggler_release.load()) std::this_thread::yield();
    });
    while (!straggler_parked.load()) std::this_thread::yield();

    // Explicit governor ticker: guarantees sampling even while every
    // writer is stalled inside an injected fault, and tracks the worst
    // state the storm reached.
    std::atomic<bool> stop_ticker{false};
    std::atomic<std::uint8_t> max_state{0};
    std::thread ticker([&] {
      while (!stop_ticker.load()) {
        const auto st = static_cast<std::uint8_t>(sample_governor(domain));
        std::uint8_t seen = max_state.load();
        while (st > seen && !max_state.compare_exchange_weak(seen, st)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    std::atomic<bool> stop_workers{false};
    lot::sync::ThreadBarrier barrier(p.threads + 1);  // workers + main
    std::vector<std::thread> workers;
    workers.reserve(p.threads);
    for (unsigned t = 0; t < p.threads; ++t) {
      workers.emplace_back([&, t] {
        lot::util::Xoshiro256 rng(p.seed * 0x9E3779B97F4A7C15ULL + t + 1);
        std::uint64_t oom_here = 0;
        barrier.arrive_and_wait();  // storm scheduler starts with us
        for (std::uint64_t i = 0;
             i < p.max_ops_per_thread && !stop_workers.load(); ++i) {
          const K key = static_cast<K>(
              rng.next_below(static_cast<std::uint64_t>(p.key_range)));
          const auto dice = rng.next_below(100);
          if (dice < 40) {
            rec.record(t, lot::check::Op::kContains, key,
                       [&] { return map.contains(key); });
          } else if (dice < 70) {
            // The one fallible op. A storm-killed insert must be a strong-
            // guarantee no-op; the recorder records nothing for it (the
            // throw propagates before the event push).
            try {
              rec.record(t, lot::check::Op::kInsert, key,
                         [&] { return map.insert(key, key); });
            } catch (const std::bad_alloc&) {
              ++oom_here;
            }
          } else {
            rec.record(t, lot::check::Op::kRemove, key,
                       [&] { return map.erase(key); });
          }
        }
        survived_oom.fetch_add(oom_here);
      });
    }

    inject::StormScheduler storm;
    storm.start(storm_spec(p));
    barrier.arrive_and_wait();  // release the workers into the weather
    storm.wait();               // envelope played out, site rates back at 0
    // A short calm tail keeps churn running while rates are already zero —
    // recovery begins under load, as it would in production.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop_workers = true;
    for (auto& w : workers) w.join();
    inject::enable_injection(false);
    lot::check::enable_perturbation(false);
    stop_ticker = true;
    ticker.join();

    // ---- during-storm assertions -------------------------------------
    const auto alloc_site = p.partial ? inject::Site::kPartialInsertAlloc
                                      : inject::Site::kLoInsertAlloc;
    EXPECT_GT(
        inject::fires(alloc_site) + inject::fires(inject::Site::kPoolAlloc), 0u)
        << "the storm never landed an allocation fault";
    EXPECT_EQ(
        inject::fires(alloc_site) + inject::fires(inject::Site::kPoolAlloc),
        survived_oom.load());
    EXPECT_GT(inject::fires(inject::Site::kGuardStallReader) +
                  inject::fires(inject::Site::kGuardStallWriter),
              0u)
        << "the storm never stalled a guard";

    // Quiescent, straggler still pinned: the frozen backlog and the stall
    // watchdog are exactly what the governor exists to see.
    EXPECT_GE(domain.pending_retired(), p.high_water)
        << "the straggler should have frozen a backlog past the mark";
    sample_governor(domain);
#if !defined(LOT_DISABLE_HEALTH)
    if (p.governed) {
      EXPECT_GE(governor().state(), State::kDegraded)
          << "governor never reacted to the storm";
      EXPECT_GE(static_cast<State>(max_state.load()), State::kDegraded);
      EXPECT_GE(governor().transitions(), 1u);
    }
#endif

    // ---- recovery ----------------------------------------------------
    straggler_release = true;
    straggler.join();

    const std::uint32_t bound = recovery_bound_ticks();
    std::uint32_t ticks_used = 0;
    for (; ticks_used < bound; ++ticks_used) {
      const State st = sample_governor(domain);
      if (st == State::kHealthy && domain.pending_retired() < p.high_water) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
#if !defined(LOT_DISABLE_HEALTH)
    if (p.governed) {
      EXPECT_LT(ticks_used, bound)
          << "governor failed its documented recovery bound";
      EXPECT_EQ(governor().state(), State::kHealthy);
      EXPECT_LT(domain.pending_retired(), p.high_water)
          << "drain boost failed to collapse the backlog";
      std::printf(
          "[ storm    ] recovered to healthy in %u/%u ticks, max state %s, "
          "%llu OOMs survived\n",
          ticks_used, bound,
          lot::health::state_name(static_cast<State>(max_state.load())),
          static_cast<unsigned long long>(survived_oom.load()));
    } else
#endif
    {
      // The ungoverned arm (policies off, or the OFF build): no boosted
      // drain exists, so the backlog sits frozen past the mark after the
      // same bound — the recovery property the governed arms prove is
      // violated without the governor.
      EXPECT_EQ(ticks_used, bound);
      EXPECT_GE(domain.pending_retired(), p.high_water)
          << "without the governor the backlog should NOT have collapsed";
      domain.flush();  // manual cleanup the governor would have provided
      domain.flush();
    }

    // ---- quiescent correctness ---------------------------------------
    if constexpr (MapT::kBalanced) {
      if (p.check_heights) map.repair_balance();
    }
    const auto rep = lot::lo::validate(map, p.check_heights, p.partial);
    EXPECT_TRUE(rep.ok) << "structural validation failed after the storm:\n"
                        << rep.to_string();

    EXPECT_FALSE(rec.overflowed()) << "history log overflow: grow capacity";
    auto out = lot::stress::check_history(rec.merged());
    out.obs_before = obs_before;
    out.obs_after = lot::obs::Registry::instance().snapshot();
    lot::stress::expect_linearizable(out);
    lot::stress::print_check_stats(p.governed ? "storm" : "storm-ungoverned",
                                   out);

    // ---- obs reconciliation (exact, faults included) -----------------
    if (lot::obs::kEnabled) {
      std::uint64_t ins = 0, ins_ok = 0, rem = 0, rem_ok = 0;
      std::uint64_t con = 0, con_ok = 0;
      for (const auto& e : out.history) {
        switch (e.op) {
          case lot::check::Op::kInsert:
            ++ins;
            ins_ok += e.result ? 1 : 0;
            break;
          case lot::check::Op::kRemove:
            ++rem;
            rem_ok += e.result ? 1 : 0;
            break;
          case lot::check::Op::kContains:
            ++con;
            con_ok += e.result ? 1 : 0;
            break;
          case lot::check::Op::kScan:
            break;  // whole-scan observations never land in the event log
        }
      }
      using lot::obs::Counter;
      const auto d = [&](Counter c) {
        return out.obs_after.counter(c) - out.obs_before.counter(c);
      };
      // A faulted insert never reached its op counter, and the recorder
      // recorded nothing for it: history and counters agree exactly.
      EXPECT_EQ(d(Counter::kInsertOps), ins) << "insert ops vs history";
      EXPECT_EQ(d(Counter::kInsertSuccess), ins_ok) << "insert successes";
      EXPECT_EQ(d(Counter::kEraseOps), rem) << "erase ops vs history";
      EXPECT_EQ(d(Counter::kEraseSuccess), rem_ok) << "erase successes";
      EXPECT_EQ(d(Counter::kContainsOps), con) << "contains ops vs history";
      EXPECT_EQ(d(Counter::kContainsHits), con_ok) << "contains hits";
      // The paper's read-side claim survives the storm: no read path ever
      // re-descended, with every abandoned write descent paid for by a
      // restart count (including the lazy-alloc unwind's).
      EXPECT_EQ(lot::obs::Snapshot::contains_restarts_between(out.obs_before,
                                                              out.obs_after),
                0)
          << "a read path re-descended the tree during the storm";
      // Write-side restart audit, storm-adjusted (header comment): lazy
      // variants count one restart per escaped insert bad_alloc with no
      // matching fallback.
      const std::uint64_t adjustment =
          p.lazy_insert_alloc ? survived_oom.load() : 0;
      EXPECT_EQ(d(Counter::kValidationFallbacks) + adjustment,
                d(Counter::kInsertRestarts) + d(Counter::kEraseRestarts))
          << "fallbacks vs restarts diverged (adjustment=" << adjustment
          << ")";
    }

    domain.flush();
    domain.flush();
    const auto stats = domain.stats();
    EXPECT_EQ(stats.emergency_leaks, 0u);
    EXPECT_EQ(domain.pending_retired(), 0u);
    teardown_governor();
  }
  EXPECT_EQ(AllocStats::live(), live_before) << "node leak across the storm";
}

using LoBst =
    lot::lo::LoMap<std::int64_t, std::int64_t, std::less<std::int64_t>, false>;
using LoAvl =
    lot::lo::LoMap<std::int64_t, std::int64_t, std::less<std::int64_t>, true>;

#if !defined(LOT_DISABLE_HEALTH)

TEST(LoStormStress, BstRecoversFromStorm) {
  StormParams p;
  run_storm_campaign<LoBst>(p);
}

TEST(LoStormStress, AvlRecoversFromStorm) {
  StormParams p;
  p.check_heights = true;
  run_storm_campaign<LoAvl>(p);
}

TEST(LoStormStress, PartialBstRecoversFromStorm) {
  StormParams p;
  p.partial = true;
  p.lazy_insert_alloc = true;
  run_storm_campaign<lot::lo::PartialBstMap<std::int64_t, std::int64_t>>(p);
}

TEST(LoStormStress, PartialAvlRecoversFromStorm) {
  StormParams p;
  p.partial = true;
  p.lazy_insert_alloc = true;
  p.check_heights = true;
  run_storm_campaign<lot::lo::PartialAvlMap<std::int64_t, std::int64_t>>(p);
}

// Negative control: same weather, policies off and thresholds unreachable
// (the ungoverned build as a runtime arm). The tree itself must still be
// correct — the governor is never a correctness dependency — but the
// recovery property the governed arms prove is violated.
TEST(LoStormStress, GovernorPoliciesOffViolatesRecoveryBound) {
  StormParams p;
  p.governed = false;
  run_storm_campaign<LoBst>(p);
}

#else  // LOT_DISABLE_HEALTH

// The compile-out build still has to ride out the same weather — the
// governor is an optimization, never a correctness layer.
TEST(LoStormStress, OffBuildSurvivesStorm) {
  StormParams p;
  p.governed = false;
  run_storm_campaign<LoBst>(p);
}

#endif  // LOT_DISABLE_HEALTH

}  // namespace
