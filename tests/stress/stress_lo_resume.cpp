// Restart-audit campaign for the versioned write path (DESIGN.md §13).
// The write path captures (pred, succ, version) before locking; a failed
// validation resumes from the captured predecessor instead of re-descending
// from the root, and only an exhausted resume budget falls back to a
// counted full restart. This binary compiles the trees with
// LOT_SCHEDULE_PERTURB and fires the kWriterCaptured point — a randomized
// pause between the capture and the lock, i.e. inside the exact window the
// resume machinery exists for — then checks every recorded history for
// linearizability and reconciles it exactly against the tree's telemetry:
// resumes take no descent, every fallback is one counted restart, and the
// windowed "contains never restarts" identity still closes to zero.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/perturb.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "obs/obs.hpp"
#include "stress_common.hpp"

namespace {

using K = std::int64_t;
using lot::obs::Counter;
using lot::check::PerturbPoint;
using lot::stress::run_perturbed_stress;
using lot::stress::scaled;
using lot::stress::StressParams;

static_assert(lot::check::kSchedulePerturb,
              "stress targets must compile the trees with "
              "LOT_SCHEDULE_PERTURB (see tests/stress/CMakeLists.txt)");

template <typename MapT>
class LoResumeStress : public ::testing::Test {};

using Impls = ::testing::Types<
    lot::lo::BstMap<K, K>, lot::lo::AvlMap<K, K>,
    lot::lo::PartialBstMap<K, K>, lot::lo::PartialAvlMap<K, K>>;
TYPED_TEST_SUITE(LoResumeStress, Impls);

// Write-heavy mixed churn across all four tree variants with the
// capture→lock window stretched. The acceptance trio: (a) every history
// linearizable, (b) obs reconciles exactly — including the new
// fallbacks == insert_restarts + erase_restarts cross-check inside
// expect_obs_reconciles — and (c) the perturbation demonstrably landed
// inside the resume window.
TYPED_TEST(LoResumeStress, PerturbedCaptureWindowChurnIsLinearizable) {
  TypeParam map;
  StressParams p;
  p.check_heights = TypeParam::kBalanced;
  p.partial = TypeParam::kLogicalRemoving;
  // Write-heavy (30C/35I/35R) over the default half-dense range: failed
  // interval acquisitions need overlapping writers, and the stretched
  // capture window makes neighbouring keys collide constantly.
  p.contains_pct = 30;
  p.insert_pct = 35;
  p.fire_permille = 60;
  p.max_sleep_us = 80;
  p.seed = 23;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats(TypeParam::name().data(), out);
  lot::stress::expect_linearizable(out);
  lot::stress::expect_obs_reconciles(out, p.scan_len);
  EXPECT_GE(out.total_ops, p.threads *
                               static_cast<std::uint64_t>(p.phases) *
                               p.ops_per_phase);

  // The campaign must actually have perturbed the capture→lock window, or
  // this degenerates into the plain linearizability stress.
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kWriterCaptured), 0u);

  const auto d = [&](Counter c) {
    return out.obs_after.counter(c) - out.obs_before.counter(c);
  };
  // The scaled-down tsan twin can legitimately land too few collisions for
  // a resume; the full-fat build cannot — with 8 writers on 192 keys and a
  // widened window, failed validations are guaranteed traffic.
  if (LOT_STRESS_DIVISOR == 1) {
    EXPECT_GT(d(Counter::kLocateResumes), 0u)
        << "no failed validation ever resumed in place — the versioned "
           "write path never engaged";
  }
  // Whatever did happen must balance: a fallback is exactly one restart.
  EXPECT_EQ(d(Counter::kValidationFallbacks),
            d(Counter::kInsertRestarts) + d(Counter::kEraseRestarts));
}

// Same churn on two keys: every writer fights for the same interval, so
// the resume path (and, with the tiny default budget, the fallback path)
// is exercised as hard as the schedule allows.
TYPED_TEST(LoResumeStress, SingleIntervalContentionResumesInPlace) {
  TypeParam map;
  StressParams p;
  p.threads = 4;
  p.phases = 1;
  p.ops_per_phase = scaled(4'000);
  p.key_range = 2;
  p.contains_pct = 20;
  p.insert_pct = 40;
  p.prefill = false;
  p.check_heights = TypeParam::kBalanced;
  p.partial = TypeParam::kLogicalRemoving;
  p.fire_permille = 80;
  p.max_sleep_us = 60;
  p.seed = 77;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats("single-interval contention", out);
  lot::stress::expect_linearizable(out);
  lot::stress::expect_obs_reconciles(out, p.scan_len);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kWriterCaptured), 0u);
}

// Runtime escape hatch: a resume budget of zero restores the pre-PR
// root-restart discipline. On the on-time maps every failed validation
// must then be a counted full restart and the resume counter stays flat —
// and the histories are of course still linearizable.
TEST(LoResumeStress, ZeroResumeBudgetRestoresRootRestart) {
  const auto saved = lot::lo::write_resume_limit();
  lot::lo::set_write_resume_limit(0);
  lot::lo::BstMap<K, K> map;
  StressParams p;
  p.phases = 2;
  p.ops_per_phase = scaled(6'000);
  p.contains_pct = 30;
  p.insert_pct = 35;
  p.fire_permille = 60;
  p.max_sleep_us = 80;
  p.seed = 31;
  const auto out = run_perturbed_stress(map, p);
  lot::lo::set_write_resume_limit(saved);
  lot::stress::print_check_stats("zero-budget root restart", out);
  lot::stress::expect_linearizable(out);
  lot::stress::expect_obs_reconciles(out, p.scan_len);

  const auto d = [&](Counter c) {
    return out.obs_after.counter(c) - out.obs_before.counter(c);
  };
  // On-time map + zero budget: the only resume source is the failure tail,
  // and that goes straight to fallback.
  EXPECT_EQ(d(Counter::kLocateResumes), 0u);
  EXPECT_EQ(d(Counter::kValidationFallbacks),
            d(Counter::kInsertRestarts) + d(Counter::kEraseRestarts));
}

}  // namespace
