// Checker sensitivity proof for the versioned write path: this target
// compiles the tree with LOT_INJECT_BUG=2, which skips the succ-version
// bump on insert's relink (lo/core.hpp). A concurrent writer that captured
// (pred, succ, version) before the relink then sees a version match, trusts
// its stale captured successor, and splices right past the just-inserted
// node — orphaning it from the ordering chain while it stays reachable in
// the tree. That is exactly the anomaly class the restart-audit campaign
// claims to rule out; the history checker must reject it, or the resume
// campaign's green runs would be vacuous.
//
// The orchestration is deliberately narrow rather than a random mixed
// campaign, because the injected bug poisons the tree in ways that
// *livelock* later operations instead of mis-answering them: a
// stale-validated insert spins forever in choose_parent (the believed
// interval's one free tree slot is already occupied by the node it is
// splicing past), and an erase that locates an orphan retries its interval
// acquisition forever (the orphan never becomes its predecessor's
// successor again). The one stale write that completes AND leaves an
// observable trace is an erase whose capture predates a racing insert into
// the same interval: the eraser's unlink splices pred->succ past the new
// node, the erase returns true, and the tree stays physically coherent —
// but the new key is gone from the chain while insert() had acknowledged
// it. A recorded range scan (which walks the chain and records absent keys
// as contains=false observations) then contradicts the acknowledged
// insert, and the checker must reject. So each attempt stages exactly that
// race — one eraser, one inserter, no follow-up writes — and retries with
// fresh timing until the window is hit.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "check/history.hpp"
#include "check/perturb.hpp"
#include "lo/bst.hpp"
#include "stress_common.hpp"

#if !defined(LOT_INJECT_BUG) || LOT_INJECT_BUG != 2
#error "this target must be compiled with LOT_INJECT_BUG=2"
#endif

namespace {

using K = std::int64_t;
using lot::check::Op;
using lot::check::PerturbPoint;

TEST(SeededBugStaleVersion, CheckerRejectsStaleCapturedSuccessor) {
  // The eraser must capture its (pred, succ, version) triple before the
  // inserter's relink and acquire the interval lock after it; the
  // kWriterCaptured perturbation point (firing at 100%) stretches exactly
  // that window. The race is probabilistic, so retry with varied timing
  // before declaring the checker blind.
  constexpr int kAttempts = 60;
  constexpr K kVictim = 30;  // erased; the stale unlink splices past...
  constexpr K kMid = 25;     // ...this key, freshly inserted before it
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    lot::lo::BstMap<K, K> map;
    // tid 0: prefill + verifying scan, tid 1: eraser, tid 2: inserter.
    lot::check::HistoryRecorder<K> rec(3, 128);
    for (const K k : {K{10}, K{20}, K{30}, K{40}, K{50}}) {
      rec.record(0, Op::kInsert, k, [&] { return map.insert(k, k); });
    }

    lot::check::reset_perturb_hits();
    lot::check::set_perturbation(
        1000, 1200 + static_cast<std::uint32_t>(attempt) * 97);
    lot::check::enable_perturbation(true);

    std::thread eraser([&] {
      rec.record(1, Op::kRemove, kVictim, [&] { return map.erase(kVictim); });
    });
    std::thread inserter([&] {
      // Staggered so the relink tends to land inside the eraser's
      // capture->lock window; the stagger sweeps across attempts.
      std::this_thread::sleep_for(
          std::chrono::microseconds(300 + (attempt % 7) * 150));
      rec.record(2, Op::kInsert, kMid, [&] { return map.insert(kMid, kMid); });
    });
    eraser.join();
    inserter.join();
    lot::check::enable_perturbation(false);

    // Quiescent chain walk, decomposed into per-key contains observations
    // (absent keys record as contains=false): if the stale unlink orphaned
    // kMid, this scan contradicts the acknowledged insert.
    rec.record_scan(0, K{0}, K{60},
                    [&](const K& lo, const K& hi, auto&& sink) {
                      map.range(lo, hi, sink);
                    });

    const auto out = lot::stress::check_history(rec.merged());
    ASSERT_NE(out.result.verdict, lot::check::Verdict::kAborted)
        << out.result.reason;
    if (out.result.verdict == lot::check::Verdict::kNonLinearizable) {
      lot::stress::print_check_stats("stale-version control", out);
      EXPECT_FALSE(out.result.witness.empty());
      EXPECT_FALSE(out.result.reason.empty());
      EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kWriterCaptured), 0u);
      SUCCEED() << "seeded stale-version bug caught on attempt " << attempt
                << ": " << out.result.reason;
      return;
    }
  }
  FAIL() << "checker accepted " << kAttempts
         << " histories from the stale-version tree — either the missing "
            "version bump never mattered (capture window too narrow) or "
            "the checker cannot see the lost-update anomaly";
}

}  // namespace
