// Whole-scan checker sensitivity proof: this target compiles the tree
// with LOT_INJECT_BUG=3, which makes every snapshot view's SECOND node
// resolution ignore the view's pinned epoch and read the newest committed
// state instead (lo/core.hpp, mvcc_resolve). That is precisely the bug
// class the MVCC layer exists to rule out — a scan whose prefix reflects
// the cut but whose tail reflects a later write, i.e. a torn snapshot.
//
// The per-key decomposition checker CANNOT see this: each key's verdict
// is individually justifiable somewhere inside the scan's window. Only
// the whole-scan feasibility intersection (check_snapshot_scans) notices
// that no single instant explains the full vector. The test asserts
// exactly that split: point-op histories stay linearizable while the
// whole-scan verdict must reject within a few seeded attempts — if it
// ever stops doing so, the snapshot-atomicity harness is vacuous.
#include <gtest/gtest.h>

#include <cstdint>

#include "lo/partial.hpp"
#include "stress_common.hpp"

#if !defined(LOT_INJECT_BUG) || LOT_INJECT_BUG != 3
#error "this target must be compiled with LOT_INJECT_BUG=3"
#endif
#if defined(LOT_DISABLE_MVCC)
#error "the torn-snapshot control requires an MVCC build (-DLOT_MVCC=ON)"
#endif

namespace {

using K = std::int64_t;
using lot::stress::run_perturbed_stress;
using lot::stress::scaled;
using lot::stress::StressParams;

TEST(TornSnapshot, WholeScanCheckerRejectsEpochSkippingRead) {
  // Snapshot-heavy churn over a small hot range: with writes landing
  // between a view's first and second resolution nearly every scan, the
  // injected epoch skip produces observation vectors no single instant
  // explains. Each attempt is an independent seed; the tear needs a write
  // in the right window, so allow a few runs before declaring the
  // checker blind.
  constexpr int kAttempts = 5;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    lot::lo::PartialAvlMap<K, K> map;
    StressParams p;
    p.threads = 8;
    p.phases = 1;
    p.ops_per_phase = scaled(6'000);
    p.key_range = 48;
    p.contains_pct = 10;
    p.insert_pct = 35;
    p.snapshot_pct = 30;  // erase share 25
    p.scan_len = 12;
    p.fire_permille = 80;
    p.max_sleep_us = 100;
    p.seed = 3000 + static_cast<std::uint64_t>(attempt);
    p.check_heights = true;
    p.partial = true;
    const auto out = run_perturbed_stress(map, p);
    // The injected bug lives entirely in snapshot resolution: the live
    // ops' per-key history must still linearize, or the control proves
    // nothing about the NEW checker.
    EXPECT_TRUE(out.result.ok())
        << "point-op history rejected — the injection leaked outside "
           "snapshot reads: "
        << out.result.reason;
    ASSERT_GT(out.scans.size(), 0u) << "no snapshot scans recorded";
    if (out.scan_result.verdict == lot::check::Verdict::kNonLinearizable) {
      EXPECT_FALSE(out.scan_result.reason.empty());
      SUCCEED() << "torn snapshot caught on attempt " << attempt << ": "
                << out.scan_result.reason;
      return;
    }
    ASSERT_NE(out.scan_result.verdict, lot::check::Verdict::kAborted)
        << out.scan_result.reason;
  }
  FAIL() << "whole-scan checker accepted " << kAttempts
         << " histories from the epoch-skipping snapshot reader — either "
            "the injected tear never fired or the feasibility "
            "intersection cannot see cross-key violations";
}

}  // namespace
