// Schedule-perturbed snapshot-scan stress (DESIGN.md §16): MVCC snapshot
// scans ride in the op mix across all four tree variants, racing inserts,
// erases, revive-in-place and (on the logical-removing maps) purge_all
// storms, with the named perturb points stretching every window. Each
// snapshot scan is recorded as ONE whole-scan observation and the merged
// run goes through BOTH checkers:
//   * check_set_history — per-key linearizability of the point ops and
//     weak scans, exactly as before;
//   * check_snapshot_scans — whole-scan atomicity: every snapshot scan's
//     full observation vector must be explainable by the per-key write
//     history at a single instant within the scan's window.
// Obs reconciliation is exact, snapshot counters included: every recorded
// snapshot drew precisely one view (kSnapshotAcquires), its reported keys
// equal its kRangeKeysReported share, and the §12 descent audit still
// closes to zero.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/perturb.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "stress_common.hpp"

namespace {

using K = std::int64_t;
using lot::check::PerturbPoint;
using lot::stress::run_perturbed_stress;
using lot::stress::scaled;
using lot::stress::StressParams;

static_assert(lot::check::kSchedulePerturb,
              "stress targets must compile the trees with "
              "LOT_SCHEDULE_PERTURB (see tests/stress/CMakeLists.txt)");
#if defined(LOT_DISABLE_MVCC)
#error "the snapshot stress requires an MVCC build (-DLOT_MVCC=ON)"
#endif

template <typename MapT>
class LoSnapshotStress : public ::testing::Test {};

using Impls = ::testing::Types<
    lot::lo::BstMap<K, K>, lot::lo::AvlMap<K, K>,
    lot::lo::PartialBstMap<K, K>, lot::lo::PartialAvlMap<K, K>>;
TYPED_TEST_SUITE(LoSnapshotStress, Impls);

// The acceptance campaign: snapshot scans AND weak scans share the mix, so
// the reconciliation has to separate the two kinds of kRangeOps exactly.
// On the logical-removing variants erases mostly zombify, inserts revive
// (allocating the past-version records the snapshots then walk), and a
// 1%-per-op purge_all storm physically unlinks zombies under the scans'
// feet — the limbo-list handoff is what keeps dying nodes visible to
// pinned epochs.
TYPED_TEST(LoSnapshotStress, PerturbedSnapshotChurnIsAtomic) {
  TypeParam map;
  StressParams p;
  p.phases = 2;
  p.ops_per_phase = scaled(4'000);
  p.scan_pct = 10;      // weak scans, decomposed per-key as before
  p.snapshot_pct = 15;  // whole-scan observations; erase share drops to 5
  p.scan_len = 12;
  p.check_heights = TypeParam::kBalanced;
  p.partial = TypeParam::kLogicalRemoving;
  if (TypeParam::kLogicalRemoving) p.purge_permille = 10;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats(TypeParam::name().data(), out);
  lot::stress::expect_linearizable(out);  // both verdicts
  lot::stress::expect_obs_reconciles(out, p.scan_len);

  // The campaign is vacuous unless snapshot scans actually ran and the
  // whole-scan checker actually intersected feasible sets.
  EXPECT_GT(out.scans.size(), 0u) << "no snapshot scans recorded";
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRangeStep), 0u);
  if (TypeParam::kLogicalRemoving && LOT_STRESS_DIVISOR == 1) {
    // Revives fire constantly in this mix; each allocates the past-version
    // record the snapshots resolve through.
    EXPECT_GT(out.obs_after.counter(lot::obs::Counter::kInsertRevives),
              out.obs_before.counter(lot::obs::Counter::kInsertRevives));
  }
}

// All threads over a tiny hot range, snapshot-heavy: version chains churn
// (zombify → revive → truncate) while nearly half the ops scan through
// them, so the resolver's seqlock retry loop and the chain walk are both
// exercised under maximum overlap. The whole-scan verdict must still be a
// single feasible point per scan.
TYPED_TEST(LoSnapshotStress, HotRangeSnapshotContention) {
  TypeParam map;
  StressParams p;
  p.threads = 4;
  p.phases = 1;
  p.ops_per_phase = scaled(6'000);
  p.key_range = 24;
  p.contains_pct = 20;
  p.insert_pct = 30;
  p.snapshot_pct = 40;  // erase share 10
  p.scan_len = 8;
  p.fire_permille = 60;
  p.max_sleep_us = 40;
  p.seed = 77;
  p.check_heights = TypeParam::kBalanced;
  p.partial = TypeParam::kLogicalRemoving;
  if (TypeParam::kLogicalRemoving) p.purge_permille = 20;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats("hot-range snapshots", out);
  lot::stress::expect_linearizable(out);
  lot::stress::expect_obs_reconciles(out, p.scan_len);
  EXPECT_GT(out.scans.size(), 0u);
  if (TypeParam::kLogicalRemoving) {
    // Snapshot resolutions walked version chains: the hot range guarantees
    // scans overlap revived nodes whose newest incarnation postdates the
    // pinned epoch.
    const auto walks =
        out.obs_after.counter(lot::obs::Counter::kVersionChainWalks) -
        out.obs_before.counter(lot::obs::Counter::kVersionChainWalks);
    EXPECT_GT(walks, 0u) << "no snapshot ever resolved through a chain";
  }
}

}  // namespace
