// Shared machinery for the schedule-perturbing stress tests.
//
// A stress run is phases of recorded random churn from N persistent worker
// threads, with three barrier crossings per phase:
//   1. all workers release into the phase's op loop;
//   2. workers park after their ops — thread 0 runs the full structural
//      validation (lo/validate.hpp) against the now-quiescent tree and
//      escalates the perturbation intensity for the next phase;
//   3. workers release past the validation.
// Every operation is recorded (check/history.hpp); after the workers join,
// the merged history goes through the linearizability checker. On a
// rejected history expect_linearizable() dumps the complete history plus
// the violation witness to $LOT_HISTORY_DUMP (default ./history.txt) so
// scripts/check.sh can surface the artifact.
//
// These tests compile the trees with LOT_SCHEDULE_PERTURB (see
// tests/stress/CMakeLists.txt), so the named points in lo/core.hpp and
// lo/rebalance.hpp inject randomized pauses that widen the algorithm's
// race windows — on the single-core CI box, that is where essentially all
// mid-operation interleavings come from.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "check/perturb.hpp"
#include "lo/validate.hpp"
#include "obs/obs.hpp"
#include "sync/barrier.hpp"
#include "util/random.hpp"

#ifndef LOT_STRESS_DIVISOR
#define LOT_STRESS_DIVISOR 1
#endif

namespace lot::stress {

/// Scales an iteration count down for slow instrumented builds (TSan
/// targets set LOT_STRESS_DIVISOR to ~20).
constexpr std::uint64_t scaled(std::uint64_t n) {
  const std::uint64_t s = n / LOT_STRESS_DIVISOR;
  return s > 0 ? s : 1;
}

struct StressParams {
  unsigned threads = 8;
  int phases = 3;
  std::uint64_t ops_per_phase = scaled(12'000);  // per thread
  std::int64_t key_range = 192;
  std::uint64_t seed = 1;
  bool check_heights = false;       // true for the AVL variants
  unsigned contains_pct = 40;
  unsigned insert_pct = 30;         // remainder of 100 is erase
  std::uint32_t fire_permille = 30; // phase-0 intensity; later phases escalate
  std::uint32_t max_sleep_us = 60;
  bool prefill = true;              // recorded half-dense prefill
  unsigned scan_pct = 0;            // taken from the erase share's tail
  // Snapshot scans (MVCC builds): also taken from the erase share, between
  // erase and the weak scans. Each draws a SnapshotView and records ONE
  // whole-scan observation (check/history.hpp) that the whole-scan checker
  // must explain at a single linearization point. On maps without
  // snapshot() (or LOT_MVCC=OFF builds) the share falls back to erase.
  unsigned snapshot_pct = 0;
  std::int64_t scan_len = 12;       // keys spanned per recorded scan
  // Per-op chance (permille) of an unrecorded purge_all() burst racing the
  // workers — physical unlink storms are exactly what snapshot scans must
  // survive. purge_all has no logical effect, so it needs no history
  // event. Ignored on on-time-removal maps.
  std::uint32_t purge_permille = 0;
  bool partial = false;             // logical-removing map: relax validation
  // The stale-version negative control (LOT_INJECT_BUG=2) deliberately
  // orphans nodes off the chain while they stay in the tree: the
  // linearizability verdict is the point, the tree-vs-chain mirror check
  // would only fail first.
  bool validate_structure = true;
};

template <typename KeyT>
struct StressOutcome {
  check::CheckResult<KeyT> result;
  std::vector<check::Event<KeyT>> history;
  // Whole-scan observations and their separate atomicity verdict
  // (check::check_snapshot_scans). Default-constructed CheckResult is
  // kLinearizable, so runs without snapshot scans pass vacuously.
  std::vector<check::SnapshotScan<KeyT>> scans;
  check::CheckResult<KeyT> scan_result;
  std::uint64_t total_ops = 0;
  double check_ms = 0.0;       // offline per-key checker wall time
  double scan_check_ms = 0.0;  // whole-scan checker wall time
  // Observability snapshots bracketing the run (before prefill / after the
  // workers joined, both quiescent) for expect_obs_reconciles() below.
  obs::Snapshot obs_before{};
  obs::Snapshot obs_after{};
};

/// Runs the checker over a merged history, timing it and filling the
/// outcome fields shared by the stress tests.
template <typename KeyT>
StressOutcome<KeyT> check_history(std::vector<check::Event<KeyT>> history) {
  StressOutcome<KeyT> out;
  out.history = std::move(history);
  out.total_ops = out.history.size();
  const auto t0 = std::chrono::steady_clock::now();
  out.result = check::check_set_history(out.history);
  const auto t1 = std::chrono::steady_clock::now();
  out.check_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

/// As above, plus the whole-scan atomicity check over recorded snapshot
/// scans: every scan's full observation vector must be explainable by the
/// per-key write history at a single instant within the scan's window.
template <typename KeyT>
StressOutcome<KeyT> check_history(
    std::vector<check::Event<KeyT>> history,
    std::vector<check::SnapshotScan<KeyT>> scans) {
  auto out = check_history(std::move(history));
  out.scans = std::move(scans);
  if (!out.scans.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    out.scan_result = check::check_snapshot_scans(out.history, out.scans);
    const auto t1 = std::chrono::steady_clock::now();
    out.scan_check_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  return out;
}

/// One-line checker-stats summary (gtest-style informational output, also
/// the source for the EXPERIMENTS.md checker-runtime table).
template <typename KeyT>
void print_check_stats(const char* tag, const StressOutcome<KeyT>& out) {
  const auto& s = out.result.stats;
  std::printf(
      "[ checker  ] %s: %llu events, %llu keys, %llu overlap blocks "
      "(max %llu), %llu configs, %.2f ms\n",
      tag, static_cast<unsigned long long>(s.events),
      static_cast<unsigned long long>(s.keys),
      static_cast<unsigned long long>(s.overlap_blocks),
      static_cast<unsigned long long>(s.max_block),
      static_cast<unsigned long long>(s.configs_explored), out.check_ms);
  if (!out.scans.empty()) {
    std::printf(
        "[ checker  ] %s: %zu snapshot scans, %llu configs, %.2f ms "
        "(whole-scan)\n",
        tag, out.scans.size(),
        static_cast<unsigned long long>(out.scan_result.stats.configs_explored),
        out.scan_check_ms);
  }
}

/// Runs the recorded, perturbed, phase-validated stress described in the
/// header comment and returns the checker's verdict plus the raw history.
/// Structural validation failures and recorder overflow surface as test
/// failures here; the linearizability verdict is the caller's to assert,
/// because the seeded-bug test *wants* a rejection.
template <typename MapT>
StressOutcome<typename MapT::key_type> run_perturbed_stress(
    MapT& map, const StressParams& p) {
  using K = typename MapT::key_type;
  // Worst case, every op is a scan and each scan records scan_len per-key
  // observations — scan-enabled campaigns size ops_per_phase accordingly.
  const std::size_t events_per_op =
      p.scan_pct > 0 ? static_cast<std::size_t>(p.scan_len) : 1;
  const std::size_t capacity =
      p.ops_per_phase * static_cast<std::size_t>(p.phases) * events_per_op +
      static_cast<std::size_t>(p.key_range) + 8;
  check::HistoryRecorder<K> rec(p.threads, capacity);
  const obs::Snapshot obs_before = obs::Registry::instance().snapshot();

  if (p.prefill) {
    // Recorded single-threaded prefill: every other key present, so erase
    // and contains hit live keys (and two-child removals, the relocation
    // path the perturbation targets) from the first operation.
    for (std::int64_t k = 0; k < p.key_range; k += 2) {
      rec.record(0, check::Op::kInsert, static_cast<K>(k),
                 [&] { return map.insert(static_cast<K>(k), static_cast<K>(k)); });
    }
  }

  check::reset_perturb_hits();
  check::set_perturbation(p.fire_permille, p.max_sleep_us);
  check::enable_perturbation(true);

  sync::ThreadBarrier barrier(p.threads);
  std::vector<std::thread> workers;
  workers.reserve(p.threads);
  for (unsigned t = 0; t < p.threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(p.seed * 0x9E3779B97F4A7C15ULL + t + 1);
      auto phase_start = std::chrono::steady_clock::now();
      for (int phase = 0; phase < p.phases; ++phase) {
        barrier.arrive_and_wait();  // (1) phase start
        for (std::uint64_t i = 0; i < p.ops_per_phase; ++i) {
          const K key = static_cast<K>(
              rng.next_below(static_cast<std::uint64_t>(p.key_range)));
          if constexpr (requires { map.purge_all(); }) {
            if (p.purge_permille > 0 &&
                rng.next_below(1000) < p.purge_permille) {
              map.purge_all();
            }
          }
          const auto dice = rng.next_below(100);
          const bool snapshot_roll =
              dice >= 100 - p.scan_pct - p.snapshot_pct &&
              dice < 100 - p.scan_pct;
          if (dice < p.contains_pct) {
            rec.record(t, check::Op::kContains, key,
                       [&] { return map.contains(key); });
          } else if (dice < p.contains_pct + p.insert_pct) {
            rec.record(t, check::Op::kInsert, key,
                       [&] { return map.insert(key, key); });
          } else if (dice < 100 - p.scan_pct && !snapshot_roll) {
            rec.record(t, check::Op::kRemove, key,
                       [&] { return map.erase(key); });
          } else if (snapshot_roll) {
            // Snapshot scan, recorded as ONE whole-scan observation: the
            // entire reported vector must hold at a single point within
            // the window. Falls back to erase when the map has no
            // snapshot() (weak-scan / LOT_MVCC=OFF builds), keeping the
            // op mix comparable across configurations.
            if constexpr (requires { map.snapshot(); }) {
              rec.record_snapshot_scan(
                  t, key, static_cast<K>(key + p.scan_len),
                  [&](const K& lo, const K& hi, auto&& sink) {
                    auto view = map.snapshot();
                    view.range(lo, hi, sink);
                  });
            } else {
              rec.record(t, check::Op::kRemove, key,
                         [&] { return map.erase(key); });
            }
          } else {
            // Recorded range scan, decomposed by the recorder into
            // per-key contains observations (check/history.hpp) that the
            // linearizability checker validates like any other reads.
            rec.record_scan(t, key, static_cast<K>(key + p.scan_len),
                            [&](const K& lo, const K& hi, auto&& sink) {
                              map.range(lo, hi, sink);
                            });
          }
        }
        barrier.arrive_and_wait();  // (2) everyone parked: quiescent point
        if (t == 0) {
          std::printf("[ stress   ] phase %d done (%.1fs)\n", phase,
                      std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - phase_start)
                          .count());
          std::fflush(stdout);
          phase_start = std::chrono::steady_clock::now();
          if (p.validate_structure) {
            if constexpr (MapT::kBalanced) {
              // The rotation throttle may have deferred repairs during the
              // contended phase; strict-balance validation is a statement
              // about quiescence, so converge first (DESIGN.md §13).
              if (p.check_heights) map.repair_balance();
            }
            const auto rep = lo::validate(map, p.check_heights, p.partial);
            EXPECT_TRUE(rep.ok)
                << "structural validation failed after phase " << phase
                << ":\n"
                << rep.to_string();
          }
          // Escalate the firing rate each phase; cap the sleep length at
          // 2x base — longer sleeps under the AVL tree locks (rotations
          // hold them) serialize the whole run on the one-core CI box
          // without widening the windows any further.
          const std::uint32_t permille = p.fire_permille << (phase + 1);
          const std::uint32_t sleep_us = p.max_sleep_us << (phase + 1);
          const std::uint32_t sleep_cap = p.max_sleep_us * 2;
          check::set_perturbation(permille > 1000 ? 1000 : permille,
                                  sleep_us > sleep_cap ? sleep_cap : sleep_us);
        }
        barrier.arrive_and_wait();  // (3) release past validation
      }
    });
  }
  for (auto& w : workers) w.join();
  check::enable_perturbation(false);
  // Quiescent: every worker joined, and validate() below reads the tree
  // without going through the counted op surface.
  const obs::Snapshot obs_after = obs::Registry::instance().snapshot();

  EXPECT_FALSE(rec.overflowed()) << "history log overflow: grow capacity";
  if (p.validate_structure) {
    if constexpr (MapT::kBalanced) {
      if (p.check_heights) map.repair_balance();
    }
    const auto rep = lo::validate(map, p.check_heights, p.partial);
    EXPECT_TRUE(rep.ok) << "final structural validation failed:\n"
                        << rep.to_string();
  }

  auto out = check_history(rec.merged(), rec.merged_scans());
  out.obs_before = obs_before;
  out.obs_after = obs_after;
  return out;
}

/// Reconciles the obs counter deltas across a stress run against the
/// recorded history, with zero tolerance: every operation the checker saw
/// must have been counted exactly once by the tree's own telemetry, and —
/// the paper's §4 claim, audited under schedule perturbation — contains
/// must never have restarted a descent. No-op in LOT_OBS=OFF builds.
///
/// `scan_len` must match the StressParams the run used: the recorder
/// decomposes each range scan into exactly scan_len per-key contains
/// observations, while the tree counts the scan as one kRangeOps plus one
/// kRangeKeysReported per key handed to the sink.
template <typename KeyT>
void expect_obs_reconciles(const StressOutcome<KeyT>& out,
                           std::int64_t scan_len) {
  if (!obs::kEnabled) return;
  std::uint64_t ins = 0, ins_ok = 0, rem = 0, rem_ok = 0;
  std::uint64_t con = 0, con_ok = 0;
  for (const auto& e : out.history) {
    switch (e.op) {
      case check::Op::kInsert:
        ++ins;
        ins_ok += e.result ? 1 : 0;
        break;
      case check::Op::kRemove:
        ++rem;
        rem_ok += e.result ? 1 : 0;
        break;
      case check::Op::kContains:
        ++con;
        con_ok += e.result ? 1 : 0;
        break;
      case check::Op::kScan:
        break;  // whole-scan observations live in out.scans, never here
    }
  }
  using obs::Counter;
  const auto d = [&](Counter c) {
    return out.obs_after.counter(c) - out.obs_before.counter(c);
  };
  EXPECT_EQ(d(Counter::kInsertOps), ins) << "insert ops vs history";
  EXPECT_EQ(d(Counter::kInsertSuccess), ins_ok) << "insert successes";
  EXPECT_EQ(d(Counter::kEraseOps), rem) << "erase ops vs history";
  EXPECT_EQ(d(Counter::kEraseSuccess), rem_ok) << "erase successes";
  // Snapshot accounting is exact: every recorded snapshot scan acquired
  // precisely one view, and each view's range() counted one kRangeOps plus
  // one kRangeKeysReported per key it handed the sink — which is exactly
  // that scan's recorded `present` vector. Subtracting those from the
  // range-counter deltas leaves the weak scans, which the recorder
  // decomposed into per-key contains observations.
  const std::uint64_t snap_scans = out.scans.size();
  std::uint64_t snap_keys = 0;
  for (const auto& s : out.scans) snap_keys += s.present.size();
  EXPECT_EQ(d(Counter::kSnapshotAcquires), snap_scans)
      << "snapshot views acquired vs recorded snapshot scans";
  ASSERT_GE(d(Counter::kRangeOps), snap_scans) << "range ops vs snapshots";
  ASSERT_GE(d(Counter::kRangeKeysReported), snap_keys)
      << "range keys vs snapshot observations";
  const std::uint64_t scans = d(Counter::kRangeOps) - snap_scans;
  EXPECT_EQ(d(Counter::kContainsOps) +
                scans * static_cast<std::uint64_t>(scan_len),
            con)
      << "contains observations (point + " << scans << " scans x "
      << scan_len << ") vs history";
  EXPECT_EQ(d(Counter::kContainsHits) + d(Counter::kRangeKeysReported) -
                snap_keys,
            con_ok)
      << "contains hits + scan keys reported vs history true-reads";
  // The derived audit over this window: every tree descent accounted for
  // by exactly one op or one counted write restart → contains (and every
  // other read) never restarted, even with perturbation widening every
  // race window. In-place resumes perform no descent, so the identity is
  // unchanged by the versioned write path (DESIGN.md §13).
  EXPECT_EQ(obs::Snapshot::contains_restarts_between(out.obs_before,
                                                     out.obs_after),
            0)
      << "a read path re-descended the tree";
  // And the resumes themselves are accounted exactly: every write attempt
  // that exhausted its resume budget fell back to precisely one counted
  // root re-descent — no restart is ever counted without its fallback, no
  // fallback without its restart.
  EXPECT_EQ(d(Counter::kValidationFallbacks),
            d(Counter::kInsertRestarts) + d(Counter::kEraseRestarts))
      << "fallbacks vs restart counts diverged";
  // MVCC bookkeeping closes over the same window: a past-version record is
  // only ever created by a successful insert that revived a zombie, so the
  // versions retired can never exceed the successful inserts; and version
  // chains are only walked on behalf of a snapshot resolution, so a run
  // that never took a snapshot never touched a chain.
  EXPECT_LE(d(Counter::kVersionsRetired), d(Counter::kInsertSuccess))
      << "more versions retired than revives could have created";
  if (snap_scans == 0) {
    EXPECT_EQ(d(Counter::kVersionChainWalks), 0u)
        << "version chain walked without any snapshot";
  }
}

/// Writes the full history and (if any) violation witness where
/// scripts/check.sh expects the artifact.
template <typename KeyT>
std::string dump_history_artifact(const StressOutcome<KeyT>& out) {
  const char* env = std::getenv("LOT_HISTORY_DUMP");
  const std::string path = (env != nullptr && *env != '\0') ? env
                                                            : "history.txt";
  std::ofstream f(path, std::ios::trunc);
  f << "# verdict: "
    << (out.result.verdict == check::Verdict::kLinearizable
            ? "linearizable"
            : out.result.verdict == check::Verdict::kNonLinearizable
                  ? "NON-LINEARIZABLE"
                  : "aborted (budget)")
    << "\n# reason: " << out.result.reason << "\n";
  if (!out.result.witness.empty()) {
    f << "# offending block:\n"
      << check::format_history(out.result.witness);
  }
  if (!out.scans.empty()) {
    f << "# whole-scan verdict: "
      << (out.scan_result.ok() ? "linearizable" : "NON-LINEARIZABLE")
      << "\n# whole-scan reason: " << out.scan_result.reason << "\n";
    if (!out.scan_result.witness.empty()) {
      f << "# writes on the offending key:\n"
        << check::format_history(out.scan_result.witness);
    }
    f << "# snapshot scans (" << out.scans.size() << "):\n";
    for (const auto& s : out.scans) {
      f << "scan t" << s.thread << " [" << s.invoke << "," << s.response
        << ") range [" << s.lo << "," << s.hi << ") present {";
      for (std::size_t i = 0; i < s.present.size(); ++i) {
        if (i > 0) f << ' ';
        f << s.present[i];
      }
      f << "}\n";
    }
  }
  f << "# full history (" << out.history.size() << " events):\n"
    << check::format_history(out.history);
  return path;
}

/// Asserts the outcome is linearizable; on failure dumps the artifact and
/// points at it in the assertion message.
template <typename KeyT>
void expect_linearizable(const StressOutcome<KeyT>& out) {
  if (out.result.ok() && out.scan_result.ok()) return;
  const std::string path = dump_history_artifact(out);
  if (!out.result.ok()) {
    ADD_FAILURE() << "history of " << out.history.size()
                  << " events is not linearizable: " << out.result.reason
                  << "\nfull history dumped to " << path;
  }
  if (!out.scan_result.ok()) {
    ADD_FAILURE() << out.scans.size() << " snapshot scans checked, "
                  << "whole-scan atomicity violated: "
                  << out.scan_result.reason << "\nfull history dumped to "
                  << path;
  }
}

}  // namespace lot::stress
