// Single-threaded functional tests for the logical-ordering trees: API
// semantics, the paper's running examples, structural invariants after
// deterministic op sequences, and a randomized differential test against
// std::map. Both variants (BST and AVL) run through the same typed suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/validate.hpp"
#include "util/random.hpp"

namespace {

using lot::lo::AvlMap;
using lot::lo::BstMap;

template <typename MapT>
class LoSequentialTest : public ::testing::Test {
 protected:
  static constexpr bool kBalanced =
      std::is_same_v<MapT, AvlMap<std::int64_t, std::int64_t>>;

  void expect_valid(const MapT& m) {
    const auto rep = lot::lo::validate(m, kBalanced);
    EXPECT_TRUE(rep.ok) << rep.to_string();
  }
};

using Impls = ::testing::Types<BstMap<std::int64_t, std::int64_t>,
                               AvlMap<std::int64_t, std::int64_t>>;
TYPED_TEST_SUITE(LoSequentialTest, Impls);

TYPED_TEST(LoSequentialTest, EmptyTree) {
  TypeParam m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(1));
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_FALSE(m.erase(1));
  EXPECT_FALSE(m.min().has_value());
  EXPECT_FALSE(m.max().has_value());
  EXPECT_EQ(m.size_slow(), 0u);
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, InsertContainsGet) {
  TypeParam m;
  EXPECT_TRUE(m.insert(7, 70));
  EXPECT_FALSE(m.insert(7, 71));  // duplicate rejected
  EXPECT_TRUE(m.contains(7));
  EXPECT_EQ(m.get(7).value(), 70);
  EXPECT_FALSE(m.contains(6));
  EXPECT_FALSE(m.contains(8));
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, PaperRunningExample) {
  // Figure 1/2 of the paper: {1, 3, 7, 9}; removing 3 must keep 7
  // reachable through the logical ordering.
  TypeParam m;
  for (std::int64_t k : {3, 1, 9, 7}) ASSERT_TRUE(m.insert(k, k));
  ASSERT_TRUE(m.erase(3));
  EXPECT_TRUE(m.contains(7));
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.contains(9));
  EXPECT_FALSE(m.contains(3));
  EXPECT_EQ(m.size_slow(), 3u);
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, RemoveLeaf) {
  TypeParam m;
  for (std::int64_t k : {5, 3, 8}) m.insert(k, k);
  EXPECT_TRUE(m.erase(3));
  EXPECT_FALSE(m.contains(3));
  EXPECT_EQ(m.size_slow(), 2u);
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, RemoveSingleChildNode) {
  TypeParam m;
  for (std::int64_t k : {5, 3, 2}) m.insert(k, k);
  EXPECT_TRUE(m.erase(3));  // 3 has only the left child 2
  EXPECT_TRUE(m.contains(2));
  EXPECT_TRUE(m.contains(5));
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, RemoveTwoChildrenOnTime) {
  // On-time deletion (§3.3): the removed internal node must be physically
  // gone immediately — validate() fails if a marked node stays reachable.
  TypeParam m;
  for (std::int64_t k : {50, 25, 75, 10, 30, 60, 90, 27, 35}) m.insert(k, k);
  ASSERT_TRUE(m.erase(25));  // two children; successor 27 relocates
  EXPECT_FALSE(m.contains(25));
  for (std::int64_t k : {50, 75, 10, 30, 60, 90, 27, 35}) {
    EXPECT_TRUE(m.contains(k)) << k;
  }
  this->expect_valid(m);

  ASSERT_TRUE(m.erase(50));  // root removal, two children
  EXPECT_FALSE(m.contains(50));
  EXPECT_EQ(m.size_slow(), 7u);
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, RemoveSuccessorIsDeepLeftSpine) {
  // Successor of the removed node is not its direct child (s.parent != n).
  TypeParam m;
  for (std::int64_t k : {20, 10, 40, 30, 50, 25, 35}) m.insert(k, k);
  ASSERT_TRUE(m.erase(20));  // successor 25 sits at the bottom of a spine
  EXPECT_FALSE(m.contains(20));
  EXPECT_TRUE(m.contains(25));
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, MinMax) {
  TypeParam m;
  for (std::int64_t k : {7, 3, 9, 1, 5}) m.insert(k, k * 10);
  EXPECT_EQ(m.min().value(), (std::pair<std::int64_t, std::int64_t>{1, 10}));
  EXPECT_EQ(m.max().value(), (std::pair<std::int64_t, std::int64_t>{9, 90}));
  m.erase(1);
  m.erase(9);
  EXPECT_EQ(m.min().value().first, 3);
  EXPECT_EQ(m.max().value().first, 7);
}

TYPED_TEST(LoSequentialTest, OrderedIteration) {
  TypeParam m;
  for (std::int64_t k : {6, 2, 8, 4, 0}) m.insert(k, k + 100);
  std::vector<std::int64_t> keys;
  m.for_each([&](std::int64_t k, std::int64_t v) {
    keys.push_back(k);
    EXPECT_EQ(v, k + 100);
  });
  EXPECT_EQ(keys, (std::vector<std::int64_t>{0, 2, 4, 6, 8}));
}

TYPED_TEST(LoSequentialTest, NegativeAndBoundaryKeys) {
  TypeParam m;
  EXPECT_TRUE(m.insert(-1'000'000, 1));
  EXPECT_TRUE(m.insert(0, 2));
  EXPECT_TRUE(m.insert(1'000'000, 3));
  EXPECT_TRUE(m.contains(-1'000'000));
  EXPECT_TRUE(m.contains(0));
  EXPECT_EQ(m.min().value().first, -1'000'000);
  EXPECT_TRUE(m.erase(-1'000'000));
  EXPECT_EQ(m.min().value().first, 0);
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, InsertEraseReinsert) {
  TypeParam m;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(m.insert(42, round));
    EXPECT_EQ(m.get(42).value(), round);
    EXPECT_TRUE(m.erase(42));
    EXPECT_FALSE(m.contains(42));
  }
  EXPECT_TRUE(m.empty());
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, AscendingDescendingFill) {
  TypeParam m;
  constexpr std::int64_t kN = 2'000;
  for (std::int64_t k = 0; k < kN; ++k) ASSERT_TRUE(m.insert(k, k));
  EXPECT_EQ(m.size_slow(), static_cast<std::size_t>(kN));
  this->expect_valid(m);
  for (std::int64_t k = kN - 1; k >= 0; --k) ASSERT_TRUE(m.erase(k));
  EXPECT_TRUE(m.empty());
  this->expect_valid(m);

  for (std::int64_t k = kN - 1; k >= 0; --k) ASSERT_TRUE(m.insert(k, k));
  this->expect_valid(m);
  for (std::int64_t k = 0; k < kN; ++k) ASSERT_TRUE(m.erase(k));
  EXPECT_TRUE(m.empty());
  this->expect_valid(m);
}

TYPED_TEST(LoSequentialTest, DifferentialVsStdMap) {
  TypeParam m;
  std::map<std::int64_t, std::int64_t> oracle;
  lot::util::Xoshiro256 rng(7);
  for (int i = 0; i < 100'000; ++i) {
    const std::int64_t k = rng.next_in(0, 499);
    switch (rng.next_below(4)) {
      case 0:
        ASSERT_EQ(m.insert(k, i), oracle.emplace(k, i).second);
        break;
      case 1:
        ASSERT_EQ(m.erase(k), oracle.erase(k) > 0);
        break;
      case 2:
        ASSERT_EQ(m.contains(k), oracle.count(k) > 0);
        break;
      default: {
        const auto mine = m.get(k);
        const auto it = oracle.find(k);
        ASSERT_EQ(mine.has_value(), it != oracle.end());
        if (mine) {
          ASSERT_EQ(*mine, it->second);
        }
      }
    }
  }
  ASSERT_EQ(m.size_slow(), oracle.size());
  auto it = oracle.begin();
  m.for_each([&](std::int64_t k, std::int64_t v) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(it->first, k);
    EXPECT_EQ(it->second, v);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());
  this->expect_valid(m);
}

// AVL-only: quiescent strict balance after adversarial (sorted) input.
TEST(LoAvlOnly, SortedFillIsBalanced) {
  AvlMap<std::int64_t, std::int64_t> m;
  constexpr std::int64_t kN = 1 << 12;
  for (std::int64_t k = 0; k < kN; ++k) ASSERT_TRUE(m.insert(k, k));
  const auto rep = lot::lo::validate(m, /*check_heights=*/true);
  ASSERT_TRUE(rep.ok) << rep.to_string();
  EXPECT_LE(rep.height, 19);  // 1.4405 * log2(n)
}

TEST(LoAvlOnly, BalanceHoldsThroughChurn) {
  AvlMap<std::int64_t, std::int64_t> m;
  lot::util::Xoshiro256 rng(99);
  for (int i = 0; i < 50'000; ++i) {
    const std::int64_t k = rng.next_in(0, 2'000);
    if (rng.percent(55)) {
      m.insert(k, i);
    } else {
      m.erase(k);
    }
  }
  const auto rep = lot::lo::validate(m, true);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

// BST-only: a degenerate fill must still be correct (just slow).
TEST(LoBstOnly, DegenerateChainCorrect) {
  BstMap<std::int64_t, std::int64_t> m;
  for (std::int64_t k = 0; k < 300; ++k) ASSERT_TRUE(m.insert(k, k));
  const auto rep = lot::lo::validate(m, false);
  ASSERT_TRUE(rep.ok) << rep.to_string();
  EXPECT_EQ(rep.height, 300);  // no balancing: a right spine
  for (std::int64_t k = 0; k < 300; ++k) EXPECT_TRUE(m.contains(k));
}

}  // namespace
